// Command stashsim runs a single network simulation with configurable
// topology, stashing mode, and synthetic workload, printing a summary.
//
// Examples:
//
//	stashsim -preset small -mode e2e -load 0.5 -cycles 50000
//	stashsim -preset paper -mode congestion -load 0.4 -hotspots 12 -cycles 130000
//	stashsim -p 3 -a 7 -h 3 -mode baseline -load 0.8
//	stashsim -preset tiny -mode e2e -metrics -trace trace.jsonl -sample-every 1000 -json
//
// Observability: -metrics prints the switch-level metric registry,
// -trace/-trace-chrome export the packet-lifecycle ring buffer as JSONL
// and Chrome trace_event JSON, -sample-every writes fixed-interval
// occupancy samples as CSV, -watchdog dumps non-idle switch state on
// zero-delivery windows, and -json emits a machine-readable run summary
// on stdout (human-readable output moves to stderr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"stashsim/internal/core"
	"stashsim/internal/metrics"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
	"stashsim/internal/traffic"
)

// runSummary is the -json output schema.
type runSummary struct {
	Network  string  `json:"network"`
	Mode     string  `json:"mode"`
	Seed     uint64  `json:"seed"`
	Cycles   int64   `json:"cycles"`
	Warmup   int64   `json:"warmup"`
	Offered  float64 `json:"offered"`
	Accepted float64 `json:"accepted"`

	Latency struct {
		MeanNS  float64 `json:"mean_ns"`
		P50NS   float64 `json:"p50_ns"`
		P90NS   float64 `json:"p90_ns"`
		P99NS   float64 `json:"p99_ns"`
		MaxNS   float64 `json:"max_ns"`
		Packets int64   `json:"packets"`
	} `json:"latency"`

	Counters      core.Counters    `json:"counters"`
	StashResident int              `json:"stash_resident_flits"`
	Metrics       map[string]int64 `json:"metrics,omitempty"`
	TraceEvents   int              `json:"trace_events,omitempty"`
	TraceDropped  int64            `json:"trace_dropped,omitempty"`
	WatchdogStall int64            `json:"watchdog_stalls"`
	Artifacts     map[string]string `json:"artifacts,omitempty"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	preset := flag.String("preset", "small", "base preset: tiny, small, paper (overridden by -p/-a/-h)")
	pFlag := flag.Int("p", 0, "endpoints per switch (custom topology)")
	aFlag := flag.Int("a", 0, "switches per group (custom topology)")
	hFlag := flag.Int("h", 0, "global links per switch (custom topology)")
	mode := flag.String("mode", "baseline", "switch mode: baseline, e2e, congestion")
	capFrac := flag.Float64("cap", 1.0, "stash capacity fraction (1.0, 0.5, 0.25)")
	load := flag.Float64("load", 0.5, "offered load as a fraction of channel capacity")
	msgPkts := flag.Int("burst", 1, "message size in packets")
	hotspots := flag.Int("hotspots", 0, "number of 4:1 hotspot aggressors (enables victim/aggressor classes)")
	cycles := flag.Int64("cycles", 50000, "measured cycles (after warmup)")
	warm := flag.Int64("warmup", 10000, "warmup cycles")
	seed := flag.Uint64("seed", 1, "random seed")
	ecn := flag.Bool("ecn", false, "enable ECN (implied by -mode congestion)")
	banks := flag.Bool("banks", false, "model two-bank port memory conflicts")
	errRate := flag.Float64("errors", 0, "per-packet NACK probability (e2e retransmission)")

	enableMetrics := flag.Bool("metrics", false, "enable the switch metrics registry and print it")
	metricsFull := flag.Bool("metrics-full", false, "with -metrics, print every per-switch/per-tile scope instead of totals")
	traceOut := flag.String("trace", "", "write the packet-lifecycle trace as JSONL to this file")
	traceChrome := flag.String("trace-chrome", "", "write the packet-lifecycle trace as Chrome trace_event JSON to this file")
	traceCap := flag.Int("trace-cap", 1<<16, "lifecycle tracer ring capacity in events")
	sampleEvery := flag.Int64("sample-every", 0, "occupancy sampling interval in cycles (0 = off)")
	sampleOut := flag.String("sample-out", "occupancy.csv", "occupancy sample CSV output file (with -sample-every)")
	watchdog := flag.Int64("watchdog", 0, "zero-delivery stall window in cycles (0 = off); dumps non-idle switch state")
	jsonOut := flag.Bool("json", false, "emit a machine-readable run summary as JSON on stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	// With -json, stdout carries exactly one JSON document; everything
	// human-readable moves to stderr.
	var out io.Writer = os.Stdout
	if *jsonOut {
		out = os.Stderr
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	var cfg *core.Config
	switch *preset {
	case "paper":
		cfg = core.PaperConfig()
	case "tiny":
		cfg = core.TinyConfig()
	default:
		cfg = core.SmallConfig()
	}
	if *pFlag > 0 && *aFlag > 0 && *hFlag > 0 {
		cfg = core.PaperConfig()
		cfg.Topo = topo.Dragonfly{P: *pFlag, A: *aFlag, H: *hFlag}
		radix := cfg.Topo.Radix()
		// Keep 4 rows/columns like the paper's switch; pad tile sizes.
		cfg.Rows, cfg.Cols = 4, 4
		cfg.TileIn = (radix + 3) / 4
		cfg.TileOut = (radix + 3) / 4
	}
	switch *mode {
	case "baseline":
		cfg.Mode = core.StashOff
	case "e2e":
		cfg.Mode = core.StashE2E
	case "congestion":
		cfg.Mode = core.StashCongestion
		cfg.ECN = core.DefaultECN()
	default:
		fatalf("unknown mode %q", *mode)
	}
	if *ecn {
		cfg.ECN = core.DefaultECN()
	}
	cfg.StashCapFrac = *capFrac
	cfg.BankModel = *banks
	cfg.Seed = *seed
	if *errRate > 0 {
		cfg.ErrorRate = *errRate
		cfg.RetainPayload = true
	}

	n, err := network.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintln(out, n.Describe())

	var reg *metrics.Registry
	if *enableMetrics {
		reg = metrics.NewRegistry()
		n.EnableMetrics(reg)
	}
	var tracer *metrics.Tracer
	if *traceOut != "" || *traceChrome != "" {
		tracer = metrics.NewTracer(*traceCap)
		n.EnableTracing(tracer)
	}
	if *sampleEvery > 0 {
		n.AttachSampler(*sampleEvery)
	}
	if *watchdog > 0 {
		n.AttachWatchdog(*watchdog, os.Stderr)
	}

	rng := sim.NewRNG(*seed + 77)
	rate := n.ChannelRate()
	msgFlits := *msgPkts * proto.MaxPacketFlits
	victims := proto.ClassDefault
	if *hotspots > 0 {
		victims = proto.ClassVictim
	}
	n.Collector.WithHist(victims)
	hotDst := map[int32]bool{}
	hotSrc := map[int32]bool{}
	if *hotspots > 0 {
		d := cfg.Topo
		for i := 0; i < *hotspots; i++ {
			sw := (i * d.NumSwitches()) / *hotspots
			hotDst[int32(d.EndpointID(sw, 0))] = true
		}
		k := 0
		dsts := make([]int32, 0, len(hotDst))
		for dst := range hotDst {
			dsts = append(dsts, dst)
		}
		for i := 1; k < 4**hotspots && i < n.Cfg.Topo.NumEndpoints(); i += 7 {
			id := int32(i)
			if !hotDst[id] {
				hotSrc[id] = true
				k++
			}
		}
		k = 0
		for _, ep := range n.Endpoints {
			if hotSrc[ep.ID] {
				ep.Gen = traffic.Hotspot(dsts[k%len(dsts)], msgFlits, proto.ClassAggressor, 0)
				k++
			}
		}
	}
	for _, ep := range n.Endpoints {
		if ep.Gen != nil || hotDst[ep.ID] {
			continue
		}
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			*load, rate, msgFlits, victims, 0)
	}

	n.Warmup(*warm)
	n.Run(*cycles)

	artifacts := map[string]string{}
	lat := n.Collector.LatAcc[victims]
	h := n.Collector.LatHist[victims]
	fmt.Fprintf(out, "measured %d cycles (%.1f us)\n", *cycles, float64(*cycles)/1300)
	fmt.Fprintf(out, "offered  %.3f  accepted %.3f (fraction of capacity)\n",
		n.NormalizedOffered(*cycles), n.NormalizedAccepted(*cycles))
	fmt.Fprintf(out, "latency  mean %.0f ns  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f ns (%d packets)\n",
		lat.Mean()/1.3,
		float64(h.Percentile(50))/1.3, float64(h.Percentile(90))/1.3,
		float64(h.Percentile(99))/1.3, lat.Max/1.3, lat.N)
	c := n.Counters()
	fmt.Fprintf(out, "switching: %d flits, %d sent; stash: %d stored / %d retrieved / %d resident\n",
		c.FlitsSwitched, c.FlitsSent, c.StashStores, c.StashRetrieves, n.TotalStashUsed())
	if cfg.ECN.Enabled {
		fmt.Fprintf(out, "ECN: %d marks, %d window shrinks, %d congested port-cycles\n",
			c.ECNMarks, n.Collector.WindowShrinks, c.CongestedCycles)
	}
	if cfg.Mode == core.StashE2E {
		fmt.Fprintf(out, "e2e: %d tracked, %d deleted, %d retransmits, %d sideband msgs\n",
			c.E2ETracked, c.E2EDeletes, c.E2ERetransmits, c.SidebandMsgs)
	}
	if cfg.BankModel {
		var bc int64
		for _, s := range n.Switches {
			bc += s.BankConflicts()
		}
		fmt.Fprintf(out, "bank conflicts: %d\n", bc)
	}

	if reg != nil {
		if *metricsFull {
			fmt.Fprintf(out, "\nmetrics (all scopes):\n%s", reg.Table())
		} else {
			fmt.Fprintf(out, "\nmetrics (totals across switches):\n%s", reg.TotalsTable())
		}
	}
	if tracer != nil {
		if *traceOut != "" {
			if err := writeFileWith(*traceOut, tracer.WriteJSONL); err != nil {
				fatalf("trace: %v", err)
			}
			artifacts["trace_jsonl"] = *traceOut
			fmt.Fprintf(out, "trace: %d events (%d dropped) -> %s\n", tracer.Len(), tracer.Dropped(), *traceOut)
		}
		if *traceChrome != "" {
			if err := writeFileWith(*traceChrome, tracer.WriteChromeTrace); err != nil {
				fatalf("trace-chrome: %v", err)
			}
			artifacts["trace_chrome"] = *traceChrome
			fmt.Fprintf(out, "chrome trace: %d events -> %s (open in chrome://tracing or Perfetto)\n",
				tracer.Len(), *traceChrome)
		}
	}
	if n.Sampler != nil {
		if err := os.WriteFile(*sampleOut, []byte(n.Sampler.CSV()), 0o644); err != nil {
			fatalf("sample-out: %v", err)
		}
		artifacts["occupancy_csv"] = *sampleOut
		fmt.Fprintf(out, "occupancy samples (every %d cycles) -> %s\n", *sampleEvery, *sampleOut)
	}
	if n.Watchdog != nil && n.Watchdog.Stalls > 0 {
		fmt.Fprintf(out, "watchdog: %d zero-delivery window(s) detected\n", n.Watchdog.Stalls)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		f.Close()
		artifacts["memprofile"] = *memprofile
	}
	if *cpuprofile != "" {
		artifacts["cpuprofile"] = *cpuprofile
	}

	if *jsonOut {
		var s runSummary
		s.Network = n.Describe()
		s.Mode = cfg.Mode.String()
		s.Seed = *seed
		s.Cycles = *cycles
		s.Warmup = *warm
		s.Offered = n.NormalizedOffered(*cycles)
		s.Accepted = n.NormalizedAccepted(*cycles)
		s.Latency.MeanNS = lat.Mean() / 1.3
		s.Latency.P50NS = float64(h.Percentile(50)) / 1.3
		s.Latency.P90NS = float64(h.Percentile(90)) / 1.3
		s.Latency.P99NS = float64(h.Percentile(99)) / 1.3
		s.Latency.MaxNS = lat.Max / 1.3
		s.Latency.Packets = lat.N
		s.Counters = c
		s.StashResident = n.TotalStashUsed()
		if reg != nil {
			s.Metrics = map[string]int64{}
			names, values := reg.Totals()
			for i, name := range names {
				s.Metrics[name] = values[i]
			}
		}
		if tracer != nil {
			s.TraceEvents = tracer.Len()
			s.TraceDropped = tracer.Dropped()
		}
		if n.Watchdog != nil {
			s.WatchdogStall = n.Watchdog.Stalls
		}
		if len(artifacts) > 0 {
			s.Artifacts = artifacts
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&s); err != nil {
			fatalf("json: %v", err)
		}
	}
}

// writeFileWith streams a writer-consuming export into a file.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
