// Command stashsim runs a single network simulation with configurable
// topology, stashing mode, and synthetic workload, printing a summary.
//
// Examples:
//
//	stashsim -preset small -mode e2e -load 0.5 -cycles 50000
//	stashsim -preset paper -mode congestion -load 0.4 -hotspots 12 -cycles 130000
//	stashsim -p 3 -a 7 -h 3 -mode baseline -load 0.8
package main

import (
	"flag"
	"fmt"
	"os"

	"stashsim/internal/core"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
	"stashsim/internal/traffic"
)

func main() {
	preset := flag.String("preset", "small", "base preset: tiny, small, paper (overridden by -p/-a/-h)")
	pFlag := flag.Int("p", 0, "endpoints per switch (custom topology)")
	aFlag := flag.Int("a", 0, "switches per group (custom topology)")
	hFlag := flag.Int("h", 0, "global links per switch (custom topology)")
	mode := flag.String("mode", "baseline", "switch mode: baseline, e2e, congestion")
	capFrac := flag.Float64("cap", 1.0, "stash capacity fraction (1.0, 0.5, 0.25)")
	load := flag.Float64("load", 0.5, "offered load as a fraction of channel capacity")
	msgPkts := flag.Int("burst", 1, "message size in packets")
	hotspots := flag.Int("hotspots", 0, "number of 4:1 hotspot aggressors (enables victim/aggressor classes)")
	cycles := flag.Int64("cycles", 50000, "measured cycles (after warmup)")
	warm := flag.Int64("warmup", 10000, "warmup cycles")
	seed := flag.Uint64("seed", 1, "random seed")
	ecn := flag.Bool("ecn", false, "enable ECN (implied by -mode congestion)")
	banks := flag.Bool("banks", false, "model two-bank port memory conflicts")
	errRate := flag.Float64("errors", 0, "per-packet NACK probability (e2e retransmission)")
	flag.Parse()

	var cfg *core.Config
	switch *preset {
	case "paper":
		cfg = core.PaperConfig()
	case "tiny":
		cfg = core.TinyConfig()
	default:
		cfg = core.SmallConfig()
	}
	if *pFlag > 0 && *aFlag > 0 && *hFlag > 0 {
		cfg = core.PaperConfig()
		cfg.Topo = topo.Dragonfly{P: *pFlag, A: *aFlag, H: *hFlag}
		radix := cfg.Topo.Radix()
		// Keep 4 rows/columns like the paper's switch; pad tile sizes.
		cfg.Rows, cfg.Cols = 4, 4
		cfg.TileIn = (radix + 3) / 4
		cfg.TileOut = (radix + 3) / 4
	}
	switch *mode {
	case "baseline":
		cfg.Mode = core.StashOff
	case "e2e":
		cfg.Mode = core.StashE2E
	case "congestion":
		cfg.Mode = core.StashCongestion
		cfg.ECN = core.DefaultECN()
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *ecn {
		cfg.ECN = core.DefaultECN()
	}
	cfg.StashCapFrac = *capFrac
	cfg.BankModel = *banks
	cfg.Seed = *seed
	if *errRate > 0 {
		cfg.ErrorRate = *errRate
		cfg.RetainPayload = true
	}

	n, err := network.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(n.Describe())

	rng := sim.NewRNG(*seed + 77)
	rate := n.ChannelRate()
	msgFlits := *msgPkts * proto.MaxPacketFlits
	victims := proto.ClassDefault
	if *hotspots > 0 {
		victims = proto.ClassVictim
	}
	n.Collector.WithHist(victims)
	hotDst := map[int32]bool{}
	hotSrc := map[int32]bool{}
	if *hotspots > 0 {
		d := cfg.Topo
		for i := 0; i < *hotspots; i++ {
			sw := (i * d.NumSwitches()) / *hotspots
			hotDst[int32(d.EndpointID(sw, 0))] = true
		}
		k := 0
		dsts := make([]int32, 0, len(hotDst))
		for dst := range hotDst {
			dsts = append(dsts, dst)
		}
		for i := 1; k < 4**hotspots && i < n.Cfg.Topo.NumEndpoints(); i += 7 {
			id := int32(i)
			if !hotDst[id] {
				hotSrc[id] = true
				k++
			}
		}
		k = 0
		for _, ep := range n.Endpoints {
			if hotSrc[ep.ID] {
				ep.Gen = traffic.Hotspot(dsts[k%len(dsts)], msgFlits, proto.ClassAggressor, 0)
				k++
			}
		}
	}
	for _, ep := range n.Endpoints {
		if ep.Gen != nil || hotDst[ep.ID] {
			continue
		}
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			*load, rate, msgFlits, victims, 0)
	}

	n.Warmup(*warm)
	n.Run(*cycles)

	lat := n.Collector.LatAcc[victims]
	h := n.Collector.LatHist[victims]
	fmt.Printf("measured %d cycles (%.1f us)\n", *cycles, float64(*cycles)/1300)
	fmt.Printf("offered  %.3f  accepted %.3f (fraction of capacity)\n",
		n.NormalizedOffered(*cycles), n.NormalizedAccepted(*cycles))
	fmt.Printf("latency  mean %.0f ns  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f ns (%d packets)\n",
		lat.Mean()/1.3,
		float64(h.Percentile(50))/1.3, float64(h.Percentile(90))/1.3,
		float64(h.Percentile(99))/1.3, lat.Max/1.3, lat.N)
	c := n.Counters()
	fmt.Printf("switching: %d flits, %d sent; stash: %d stored / %d retrieved / %d resident\n",
		c.FlitsSwitched, c.FlitsSent, c.StashStores, c.StashRetrieves, n.TotalStashUsed())
	if cfg.ECN.Enabled {
		fmt.Printf("ECN: %d marks, %d window shrinks, %d congested port-cycles\n",
			c.ECNMarks, n.Collector.WindowShrinks, c.CongestedCycles)
	}
	if cfg.Mode == core.StashE2E {
		fmt.Printf("e2e: %d tracked, %d deleted, %d retransmits, %d sideband msgs\n",
			c.E2ETracked, c.E2EDeletes, c.E2ERetransmits, c.SidebandMsgs)
	}
	if cfg.BankModel {
		var bc int64
		for _, s := range n.Switches {
			bc += s.BankConflicts()
		}
		fmt.Printf("bank conflicts: %d\n", bc)
	}
}
