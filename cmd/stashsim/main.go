// Command stashsim runs a single network simulation with configurable
// topology, stashing mode, and synthetic workload, printing a summary.
//
// Examples:
//
//	stashsim -preset small -mode e2e -load 0.5 -cycles 50000
//	stashsim -preset paper -mode congestion -load 0.4 -hotspots 12 -cycles 130000
//	stashsim -p 3 -a 7 -h 3 -mode baseline -load 0.8
//	stashsim -preset tiny -mode e2e -metrics -trace trace.jsonl -sample-every 1000 -json
//
// Observability: -metrics prints the switch-level metric registry,
// -trace/-trace-chrome export the packet-lifecycle ring buffer as JSONL
// and Chrome trace_event JSON, -sample-every writes fixed-interval
// occupancy samples as CSV, -watchdog dumps non-idle switch state on
// zero-delivery windows, -invariants audits the conservation laws during
// the run, and -json emits a machine-readable run summary on stdout
// (human-readable output moves to stderr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"stashsim/internal/core"
	"stashsim/internal/metrics"
	"stashsim/internal/sim"
	"stashsim/internal/telemetry"
)

// runSummary is the -json output schema.
type runSummary struct {
	Network  string  `json:"network"`
	Mode     string  `json:"mode"`
	Seed     uint64  `json:"seed"`
	Cycles   int64   `json:"cycles"`
	Warmup   int64   `json:"warmup"`
	Offered  float64 `json:"offered"`
	Accepted float64 `json:"accepted"`

	Latency struct {
		MeanNS  float64 `json:"mean_ns"`
		P50NS   float64 `json:"p50_ns"`
		P90NS   float64 `json:"p90_ns"`
		P99NS   float64 `json:"p99_ns"`
		MaxNS   float64 `json:"max_ns"`
		Packets int64   `json:"packets"`
	} `json:"latency"`

	Counters      core.Counters     `json:"counters"`
	StashResident int               `json:"stash_resident_flits"`
	Fault         *faultSummary     `json:"fault,omitempty"`
	Metrics       map[string]int64  `json:"metrics,omitempty"`
	TraceEvents   int               `json:"trace_events,omitempty"`
	TraceDropped  int64             `json:"trace_dropped,omitempty"`
	WatchdogStall int64             `json:"watchdog_stalls"`
	ExecProfile   *sim.ExecReport   `json:"exec_profile,omitempty"`
	Artifacts     map[string]string `json:"artifacts,omitempty"`
}

// faultSummary is the fault-injection and recovery section of the -json
// output, present whenever a fault plan or the recovery timers are active.
type faultSummary struct {
	PktsDropped          int64   `json:"pkts_dropped"`
	FlitsDropped         int64   `json:"flits_dropped"`
	OutagePkts           int64   `json:"outage_pkts"`
	FlitsCorrupted       int64   `json:"flits_corrupted"`
	StashCopiesLost      int64   `json:"stash_copies_lost"`
	InjectedPkts         int64   `json:"injected_pkts"`
	DeliveredUnique      int64   `json:"delivered_unique"`
	DuplicatesSuppressed int64   `json:"duplicates_suppressed"`
	Abandoned            int64   `json:"abandoned"`
	StashResends         int64   `json:"stash_resends"`
	EndpointResends      int64   `json:"endpoint_resends"`
	CorruptPkts          int64   `json:"corrupt_pkts"`
	RecoveredPkts        int64   `json:"recovered_pkts"`
	RecoveryMeanNS       float64 `json:"recovery_mean_ns"`
	StashReconstructed   int64   `json:"stash_copies_reconstructed"`
	StashReconFailed     int64   `json:"stash_recon_failed"`
	Drained              bool    `json:"drained"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	var sp simSpec
	flag.StringVar(&sp.Preset, "preset", "small", "base preset: tiny, small, paper (overridden by -p/-a/-h)")
	flag.IntVar(&sp.P, "p", 0, "endpoints per switch (custom topology)")
	flag.IntVar(&sp.A, "a", 0, "switches per group (custom topology)")
	flag.IntVar(&sp.H, "h", 0, "global links per switch (custom topology)")
	flag.StringVar(&sp.Mode, "mode", "baseline", "switch mode: baseline, e2e, congestion")
	flag.Float64Var(&sp.CapFrac, "cap", 1.0, "stash capacity fraction (1.0, 0.5, 0.25)")
	flag.Float64Var(&sp.Load, "load", 0.5, "offered load as a fraction of channel capacity")
	flag.IntVar(&sp.MsgPkts, "burst", 1, "message size in packets")
	flag.IntVar(&sp.Hotspots, "hotspots", 0, "number of 4:1 hotspot aggressors (enables victim/aggressor classes)")
	flag.Int64Var(&sp.Cycles, "cycles", 50000, "measured cycles (after warmup)")
	flag.Int64Var(&sp.Warmup, "warmup", 10000, "warmup cycles")
	flag.Uint64Var(&sp.Seed, "seed", 1, "random seed")
	flag.BoolVar(&sp.ECN, "ecn", false, "enable ECN (implied by -mode congestion)")
	flag.BoolVar(&sp.Banks, "banks", false, "model two-bank port memory conflicts")
	flag.Float64Var(&sp.ErrRate, "errors", 0, "per-packet NACK probability (e2e retransmission)")
	flag.BoolVar(&sp.Invariants, "invariants", false, "audit runtime conservation invariants during the run")
	flag.Int64Var(&sp.InvariantsEvery, "invariants-every", 64, "invariant audit interval in cycles")
	flag.StringVar(&sp.FaultPlanPath, "fault-plan", "", "JSON fault plan file (see internal/fault); flags below layer on top")
	flag.Uint64Var(&sp.FaultSeed, "fault-seed", 0, "fault RNG seed (overrides the plan's)")
	flag.Float64Var(&sp.DropRate, "link-drop-rate", 0, "per-packet Bernoulli drop probability on every link")
	flag.Float64Var(&sp.CorruptRate, "corrupt-rate", 0, "per-flit payload-corruption probability (caught by checksums)")
	flag.StringVar(&sp.Outages, "link-outage", "", "outage windows, comma-separated link@start-end (e.g. sw0.3->sw1.2@1000-3000)")
	flag.StringVar(&sp.StashFails, "stash-fail", "", "stash-bank failures, comma-separated switch.port@cycle (e.g. 0.1@5000)")
	flag.BoolVar(&sp.Retrans, "retrans", false, "enable recovery timers (auto-enabled when a plan drops packets in e2e mode)")
	flag.BoolVar(&sp.StashBypass, "stash-bypass", false, "forward packets uncovered when the stash is full instead of stalling (endpoint timers recover)")
	flag.IntVar(&sp.StashParity, "stash-parity", 0, "erasure-code stash copies into XOR parity groups of this width (0 = off; e2e mode only)")
	flag.Int64Var(&sp.Drain, "drain", 0, "after the measured window, run up to this many unloaded cycles until every packet settles")
	flag.IntVar(&sp.Workers, "workers", runtime.GOMAXPROCS(0), "cycle-level worker goroutines stepping the network (1 = serial; results are identical either way)")
	flag.StringVar(&sp.Epoch, "epoch", "auto", "parallel sync scheme: auto (group partitions free-run for lookahead-length epochs when workers allow), off (barrier every cycle), or a positive epoch-length cap in cycles; results are identical either way")
	checkpointSpec := flag.String("checkpoint", "", "write a bit-exact checkpoint as file@cycle (absolute cycle; warmup counts); resuming from it with -restore reproduces the straight-through run byte for byte")
	flag.StringVar(&sp.RestorePath, "restore", "", "resume from a checkpoint file; the other flags must rebuild the identical configuration and observers")
	assertDelivery := flag.Bool("assert-delivery", false, "with -drain, exit nonzero unless every injected packet delivered exactly once")

	enableMetrics := flag.Bool("metrics", false, "enable the switch metrics registry and print it")
	metricsFull := flag.Bool("metrics-full", false, "with -metrics, print every per-switch/per-tile scope instead of totals")
	traceOut := flag.String("trace", "", "write the packet-lifecycle trace as JSONL to this file")
	traceChrome := flag.String("trace-chrome", "", "write the packet-lifecycle trace as Chrome trace_event JSON to this file")
	traceCap := flag.Int("trace-cap", 1<<16, "lifecycle tracer ring capacity in events")
	sampleEvery := flag.Int64("sample-every", 0, "occupancy sampling interval in cycles (0 = off)")
	sampleOut := flag.String("sample-out", "occupancy.csv", "occupancy sample CSV output file (with -sample-every)")
	watchdog := flag.Int64("watchdog", 0, "zero-delivery stall window in cycles (0 = off); dumps non-idle switch state")
	profileExec := flag.Bool("profile-exec", false, "profile the cycle executor (per-worker phase/barrier timing); prints a report and adds exec_profile to -json")
	serveAddr := flag.String("serve", "", "serve live telemetry on this address (/metrics, /snapshot, /healthz, /debug/pprof), e.g. :9100")
	flightRows := flag.Int("flight", 0, "flight recorder ring size in cycles (0 = off; auto 4096 with -serve or -watchdog); dumped on stalls and SIGQUIT")
	jsonOut := flag.Bool("json", false, "emit a machine-readable run summary as JSON on stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *checkpointSpec != "" {
		i := strings.LastIndex(*checkpointSpec, "@")
		if i <= 0 {
			fatalf("-checkpoint wants file@cycle, got %q", *checkpointSpec)
		}
		at, err := strconv.ParseInt((*checkpointSpec)[i+1:], 10, 64)
		if err != nil || at < 0 {
			fatalf("-checkpoint wants file@cycle with a non-negative cycle, got %q", *checkpointSpec)
		}
		if at >= sp.Warmup+sp.Cycles {
			fatalf("-checkpoint cycle %d is past the end of the run (warmup %d + cycles %d); the drain window is not checkpointable",
				at, sp.Warmup, sp.Cycles)
		}
		sp.CheckpointPath = (*checkpointSpec)[:i]
		sp.CheckpointAt = at
	}

	// With -json, stdout carries exactly one JSON document; everything
	// human-readable moves to stderr.
	var out io.Writer = os.Stdout
	if *jsonOut {
		out = os.Stderr
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	n, err := sp.build()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintln(out, n.Describe())

	var reg *metrics.Registry
	if *enableMetrics {
		reg = metrics.NewRegistry()
		n.EnableMetrics(reg)
	}
	var tracer *metrics.Tracer
	if *traceOut != "" || *traceChrome != "" {
		tracer = metrics.NewTracer(*traceCap)
		n.EnableTracing(tracer)
	}
	if *sampleEvery > 0 {
		n.AttachSampler(*sampleEvery)
	}
	if *watchdog > 0 {
		n.AttachWatchdog(*watchdog, os.Stderr)
	}

	// Observability extras. None of these mutate simulation state, so
	// -json output stays byte-identical with or without them (enforced by
	// TestServeDeterminism). The profiler must attach after SetWorkers so
	// its lane count matches the executor's.
	if sp.Workers > 1 {
		n.SetWorkers(sp.Workers)
	}
	defer n.Close()
	var prof *sim.ExecProfiler
	if *profileExec {
		ring := 0
		if *traceChrome != "" {
			ring = 4096 // retain raw lane timings for the Chrome executor lanes
		}
		prof = n.EnableExecProfile(ring)
	}
	rows := *flightRows
	if rows == 0 && (*serveAddr != "" || *watchdog > 0) {
		rows = 4096
	}
	if rows > 0 {
		n.AttachFlight(rows)
		stopDumps := telemetry.NotifyDumps(os.Stderr, func(w io.Writer) {
			fmt.Fprintf(w, "--- SIGQUIT dump at cycle %d ---\n", n.CyclesDone())
			n.Flight.Dump(w, 64)
			n.DumpNonIdle(w)
		})
		defer stopDumps()
	}
	var pub *telemetry.Publisher
	var tsrv *telemetry.Server
	if *serveAddr != "" {
		pub = n.AttachTelemetry(64)
		tsrv = &telemetry.Server{Registry: reg, Publisher: pub, Watchdog: n.Watchdog}
		addr, err := tsrv.Start(*serveAddr)
		if err != nil {
			fatalf("%v", err)
		}
		defer tsrv.Close()
		fmt.Fprintf(out, "telemetry: http://%s (/metrics /snapshot /healthz /debug/pprof)\n", addr)
	}

	s := sp.run(n)
	pub.Publish() // final snapshot so late scrapes see the end-of-run state

	artifacts := map[string]string{}
	cfg := n.Cfg
	fmt.Fprintf(out, "measured %d cycles (%.1f us)\n", sp.Cycles, float64(sp.Cycles)/1300)
	fmt.Fprintf(out, "offered  %.3f  accepted %.3f (fraction of capacity)\n", s.Offered, s.Accepted)
	fmt.Fprintf(out, "latency  mean %.0f ns  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f ns (%d packets)\n",
		s.Latency.MeanNS, s.Latency.P50NS, s.Latency.P90NS, s.Latency.P99NS,
		s.Latency.MaxNS, s.Latency.Packets)
	c := s.Counters
	fmt.Fprintf(out, "switching: %d flits, %d sent; stash: %d stored / %d retrieved / %d resident\n",
		c.FlitsSwitched, c.FlitsSent, c.StashStores, c.StashRetrieves, s.StashResident)
	if cfg.ECN.Enabled {
		fmt.Fprintf(out, "ECN: %d marks, %d window shrinks, %d congested port-cycles\n",
			c.ECNMarks, n.Collector().WindowShrinks, c.CongestedCycles)
	}
	if cfg.Mode == core.StashE2E {
		fmt.Fprintf(out, "e2e: %d tracked, %d deleted, %d retransmits, %d sideband msgs\n",
			c.E2ETracked, c.E2EDeletes, c.E2ERetransmits, c.SidebandMsgs)
	}
	if cfg.BankModel {
		var bc int64
		for _, sw := range n.Switches {
			bc += sw.BankConflicts()
		}
		fmt.Fprintf(out, "bank conflicts: %d\n", bc)
	}
	if n.Invariants != nil {
		fmt.Fprintf(out, "invariants: %d audits, all laws held\n", n.Invariants.Checks)
	}
	if s.Fault != nil {
		fs := s.Fault
		fmt.Fprintf(out, "faults: %d pkts dropped (%d by outage), %d flits corrupted, %d stash copies lost\n",
			fs.PktsDropped, fs.OutagePkts, fs.FlitsCorrupted, fs.StashCopiesLost)
		fmt.Fprintf(out, "recovery: %d stash resends, %d endpoint resends, %d dups suppressed, %d abandoned; %d/%d delivered",
			fs.StashResends, fs.EndpointResends, fs.DuplicatesSuppressed, fs.Abandoned,
			fs.DeliveredUnique, fs.InjectedPkts)
		if fs.RecoveredPkts > 0 {
			fmt.Fprintf(out, "; recovered pkt latency mean %.0f ns", fs.RecoveryMeanNS)
		}
		fmt.Fprintln(out)
		if cfg.StashParity > 0 {
			fmt.Fprintf(out, "parity: %d groups sealed, %d copies reconstructed, %d lost past parity, %d degraded reads\n",
				s.Counters.ParityGroupsSealed, fs.StashReconstructed, fs.StashReconFailed, s.Counters.StashDegradedReads)
		}
		if sp.Drain > 0 && !fs.Drained {
			fmt.Fprintf(out, "warning: network did not drain within %d cycles\n", sp.Drain)
		}
	}

	if reg != nil {
		if *metricsFull {
			fmt.Fprintf(out, "\nmetrics (all scopes):\n%s", reg.Table())
		} else {
			fmt.Fprintf(out, "\nmetrics (totals across switches):\n%s", reg.TotalsTable())
		}
	}
	if tracer != nil {
		if *traceOut != "" {
			if err := writeFileWith(*traceOut, tracer.WriteJSONL); err != nil {
				fatalf("trace: %v", err)
			}
			artifacts["trace_jsonl"] = *traceOut
			fmt.Fprintf(out, "trace: %d events (%d dropped) -> %s\n", tracer.Len(), tracer.Dropped(), *traceOut)
		}
		if *traceChrome != "" {
			// With -profile-exec, the executor's worker/phase lanes ride
			// along in the same trace file (pid 2).
			err := writeFileWith(*traceChrome, func(w io.Writer) error {
				if prof != nil {
					return tracer.WriteChromeTraceWith(w, prof.ChromeEvents)
				}
				return tracer.WriteChromeTrace(w)
			})
			if err != nil {
				fatalf("trace-chrome: %v", err)
			}
			artifacts["trace_chrome"] = *traceChrome
			fmt.Fprintf(out, "chrome trace: %d events -> %s (open in chrome://tracing or Perfetto)\n",
				tracer.Len(), *traceChrome)
		}
	}
	if n.Sampler != nil {
		if err := os.WriteFile(*sampleOut, []byte(n.Sampler.CSV()), 0o644); err != nil {
			fatalf("sample-out: %v", err)
		}
		artifacts["occupancy_csv"] = *sampleOut
		fmt.Fprintf(out, "occupancy samples (every %d cycles) -> %s\n", *sampleEvery, *sampleOut)
	}
	if n.Watchdog != nil && n.Watchdog.Stalls > 0 {
		fmt.Fprintf(out, "watchdog: %d zero-delivery window(s) detected\n", n.Watchdog.Stalls)
	}
	if n.Watchdog != nil && n.Watchdog.Suppressed > 0 {
		fmt.Fprintf(out, "watchdog: %d zero-delivery window(s) explained by fault outages\n", n.Watchdog.Suppressed)
	}
	if prof != nil {
		fmt.Fprintf(out, "\n%s", prof.Report().Text())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		f.Close()
		artifacts["memprofile"] = *memprofile
	}
	if *cpuprofile != "" {
		artifacts["cpuprofile"] = *cpuprofile
	}

	if *jsonOut {
		if reg != nil {
			s.Metrics = map[string]int64{}
			names, values := reg.Totals()
			for i, name := range names {
				s.Metrics[name] = values[i]
			}
		}
		if tracer != nil {
			s.TraceEvents = tracer.Len()
			s.TraceDropped = tracer.Dropped()
		}
		if n.Watchdog != nil {
			s.WatchdogStall = n.Watchdog.Stalls
		}
		if prof != nil {
			s.ExecProfile = prof.Report()
		}
		if len(artifacts) > 0 {
			s.Artifacts = artifacts
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fatalf("json: %v", err)
		}
	}

	if *assertDelivery {
		if sp.Drain <= 0 {
			fatalf("-assert-delivery requires -drain (in-flight packets would fail the check)")
		}
		if s.Fault == nil {
			fatalf("-assert-delivery requires fault injection or -retrans")
		}
		fs := s.Fault
		if !fs.Drained {
			fatalf("assert-delivery: network did not drain within %d cycles", sp.Drain)
		}
		if fs.DeliveredUnique != fs.InjectedPkts || fs.Abandoned != 0 {
			fatalf("assert-delivery: injected %d, delivered %d, abandoned %d — not exactly-once",
				fs.InjectedPkts, fs.DeliveredUnique, fs.Abandoned)
		}
		fmt.Fprintf(out, "assert-delivery: all %d packets delivered exactly once\n", fs.InjectedPkts)
	}
}

// writeFileWith streams a writer-consuming export into a file.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
