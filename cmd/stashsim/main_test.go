package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"stashsim/internal/metrics"
	"stashsim/internal/telemetry"
)

// runJSON builds and runs the spec and returns the summary marshalled
// exactly as the -json flag would emit it.
func runJSON(t *testing.T, sp simSpec) []byte {
	t.Helper()
	n, err := sp.build()
	if err != nil {
		t.Fatal(err)
	}
	s := sp.run(n)
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunIsDeterministic runs the same spec twice and requires the -json
// summaries to be byte-identical. This is the end-to-end guard behind the
// determinism analyzer: any map-order, wall-clock, or global-rand
// dependence in the simulation path shows up here as a diff.
func TestRunIsDeterministic(t *testing.T) {
	specs := map[string]simSpec{
		"e2e-uniform": {
			Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
			Load: 0.4, MsgPkts: 1,
			Cycles: 3000, Warmup: 500, Seed: 42,
			Invariants: true, InvariantsEvery: 64,
		},
		"congestion-hotspot": {
			Preset: "tiny", Mode: "congestion", CapFrac: 1.0,
			Load: 0.3, MsgPkts: 2, Hotspots: 2,
			Cycles: 3000, Warmup: 500, Seed: 7,
		},
		"baseline-errors-off": {
			Preset: "tiny", Mode: "baseline", CapFrac: 1.0,
			Load: 0.5, MsgPkts: 1,
			Cycles: 2000, Warmup: 200, Seed: 1,
		},
		"e2e-faulted-drain": {
			Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
			Load: 0.3, MsgPkts: 1,
			Cycles: 3000, Warmup: 500, Seed: 9,
			DropRate: 2e-3, CorruptRate: 1e-3, FaultSeed: 5,
			Drain:      400000,
			Invariants: true, InvariantsEvery: 64,
		},
	}
	for name, sp := range specs {
		t.Run(name, func(t *testing.T) {
			a := runJSON(t, sp)
			b := runJSON(t, sp)
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different summaries:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
		})
	}
}

// TestWorkersDeterminism asserts that neither -workers nor -epoch ever
// changes results: the -json summary from a serial run must be
// byte-identical to every parallel run of the same spec across
// workers ∈ {2, 4} × epoch ∈ {off, auto}, for the stashing,
// fault-injection, parity-reconstruction, and ECN (congestion)
// configurations. This is the user-visible contract behind the parallel
// executor's sharded-collector / fixed-merge-order design and the epoch
// scheduler's serial-event clamping.
func TestWorkersDeterminism(t *testing.T) {
	specs := map[string]simSpec{
		"stashing-e2e": {
			Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
			Load: 0.35, MsgPkts: 1,
			Cycles: 4000, Warmup: 500, Seed: 21,
			Invariants: true, InvariantsEvery: 64,
		},
		"faulted-drain": {
			Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
			Load: 0.2, MsgPkts: 1,
			Cycles: 4000, Warmup: 0, Seed: 13,
			DropRate: 2e-3, CorruptRate: 1e-3, FaultSeed: 5,
			Drain: 400000,
		},
		"parity-recon": {
			Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
			Load: 0.25, MsgPkts: 1,
			Cycles: 4000, Warmup: 0, Seed: 9,
			DropRate: 4e-3, FaultSeed: 3,
			StashFails: "0.0@1500,0.1@2000,1.0@2500", StashParity: 4,
			Drain: 400000,
		},
		"ecn-congestion": {
			Preset: "tiny", Mode: "congestion", CapFrac: 1.0,
			Load: 0.4, MsgPkts: 2, Hotspots: 2, ECN: true,
			Cycles: 4000, Warmup: 500, Seed: 8,
		},
	}
	for name, sp := range specs {
		t.Run(name, func(t *testing.T) {
			serial := sp
			serial.Workers = 1
			want := runJSON(t, serial)
			for _, workers := range []int{2, 4} {
				for _, epoch := range []string{"off", "auto"} {
					parallel := sp
					parallel.Workers = workers
					parallel.Epoch = epoch
					got := runJSON(t, parallel)
					if !bytes.Equal(want, got) {
						t.Fatalf("workers=%d epoch=%s summary differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
							workers, epoch, want, got)
					}
				}
			}
		})
	}
}

// TestBadModeRejected exercises the config error path.
func TestBadModeRejected(t *testing.T) {
	sp := simSpec{Preset: "tiny", Mode: "turbo"}
	if _, err := sp.build(); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestBadPresetRejected guards against typos silently running the
// default (small) preset.
func TestBadPresetRejected(t *testing.T) {
	sp := simSpec{Preset: "med1um", Mode: "e2e"}
	if _, err := sp.build(); err == nil {
		t.Fatal("unknown preset accepted")
	}
	for _, ok := range []string{"", "tiny", "small", "paper"} {
		sp := simSpec{Preset: ok, Mode: "baseline"}
		if _, err := sp.build(); err != nil {
			t.Fatalf("preset %q rejected: %v", ok, err)
		}
	}
}

// TestObservabilityNeutralDeterminism mirrors the -serve/-profile-exec
// wiring: a run with the profiler, flight recorder, telemetry publisher
// and live HTTP server all attached must produce a -json summary
// byte-identical to a bare serial run of the same spec.
func TestObservabilityNeutralDeterminism(t *testing.T) {
	sp := simSpec{
		Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
		Load: 0.35, MsgPkts: 1,
		Cycles: 3000, Warmup: 500, Seed: 21,
	}
	bare := runJSON(t, sp)

	wiredSpec := sp
	wiredSpec.Workers = 2
	n, err := wiredSpec.build()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	reg := metrics.NewRegistry()
	n.EnableMetrics(reg)
	n.SetWorkers(wiredSpec.Workers)
	n.EnableExecProfile(128)
	n.AttachFlight(1024)
	pub := n.AttachTelemetry(64)
	srv := &telemetry.Server{Registry: reg, Publisher: pub}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := wiredSpec.run(n)
	// The summary's metrics map is populated by main only when -metrics is
	// set, so the structs compare cleanly here.
	wired, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bare, wired) {
		t.Fatalf("observability wiring changed the summary:\n--- bare ---\n%s\n--- wired ---\n%s", bare, wired)
	}
}
