package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// runJSON builds and runs the spec and returns the summary marshalled
// exactly as the -json flag would emit it.
func runJSON(t *testing.T, sp simSpec) []byte {
	t.Helper()
	n, err := sp.build()
	if err != nil {
		t.Fatal(err)
	}
	s := sp.run(n)
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunIsDeterministic runs the same spec twice and requires the -json
// summaries to be byte-identical. This is the end-to-end guard behind the
// determinism analyzer: any map-order, wall-clock, or global-rand
// dependence in the simulation path shows up here as a diff.
func TestRunIsDeterministic(t *testing.T) {
	specs := map[string]simSpec{
		"e2e-uniform": {
			Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
			Load: 0.4, MsgPkts: 1,
			Cycles: 3000, Warmup: 500, Seed: 42,
			Invariants: true, InvariantsEvery: 64,
		},
		"congestion-hotspot": {
			Preset: "tiny", Mode: "congestion", CapFrac: 1.0,
			Load: 0.3, MsgPkts: 2, Hotspots: 2,
			Cycles: 3000, Warmup: 500, Seed: 7,
		},
		"baseline-errors-off": {
			Preset: "tiny", Mode: "baseline", CapFrac: 1.0,
			Load: 0.5, MsgPkts: 1,
			Cycles: 2000, Warmup: 200, Seed: 1,
		},
		"e2e-faulted-drain": {
			Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
			Load: 0.3, MsgPkts: 1,
			Cycles: 3000, Warmup: 500, Seed: 9,
			DropRate: 2e-3, CorruptRate: 1e-3, FaultSeed: 5,
			Drain:      400000,
			Invariants: true, InvariantsEvery: 64,
		},
	}
	for name, sp := range specs {
		t.Run(name, func(t *testing.T) {
			a := runJSON(t, sp)
			b := runJSON(t, sp)
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different summaries:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
		})
	}
}

// TestBadModeRejected exercises the config error path.
func TestBadModeRejected(t *testing.T) {
	sp := simSpec{Preset: "tiny", Mode: "turbo"}
	if _, err := sp.build(); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
