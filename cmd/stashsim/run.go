package main

import (
	"fmt"
	"os"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
	"stashsim/internal/traffic"
)

// simSpec captures everything that determines a simulation's outcome:
// topology, mode, workload, duration, and seed. Two runs with equal
// specs produce byte-identical summaries (enforced by TestRunIsDeterministic).
type simSpec struct {
	Preset          string
	P, A, H         int // custom topology; all three > 0 to take effect
	Mode            string
	CapFrac         float64
	Load            float64
	MsgPkts         int
	Hotspots        int
	Cycles          int64
	Warmup          int64
	Seed            uint64
	ECN             bool
	Banks           bool
	ErrRate         float64
	Invariants      bool
	InvariantsEvery int64
	// Workers selects the cycle-level execution mode: values above one
	// drive endpoints and switches through the parallel executor. Epoch
	// picks its synchronization scheme — "auto" (default) free-runs
	// group partitions for lookahead-length epochs when the worker count
	// allows it, "off" forces the per-cycle barrier, and a positive
	// integer caps the epoch length. Results are bit-identical for any
	// combination (enforced by TestRunIsDeterministic and
	// TestWorkersDeterminism), so neither is part of the
	// outcome-determining contract above.
	Workers int
	Epoch   string

	// Fault injection and recovery (see internal/fault). FaultPlanPath
	// loads a JSON plan; the individual flags layer on top of (or replace)
	// it. Retrans forces the recovery timers on; they also auto-enable
	// whenever the plan drops packets in e2e mode. Drain > 0 runs up to
	// that many extra unloaded cycles after the measured window so every
	// in-flight or timer-pending packet settles.
	FaultPlanPath string
	FaultSeed     uint64
	DropRate      float64
	CorruptRate   float64
	Outages       string
	StashFails    string
	Retrans       bool
	StashBypass   bool
	StashParity   int
	Drain         int64

	// Checkpoint/restore (see internal/network's snapshot support).
	// CheckpointPath, when set, writes a checkpoint to that file at the
	// serial barrier before cycle CheckpointAt (an absolute cycle; warmup
	// counts). RestorePath resumes a run from a checkpoint file; the rest
	// of the spec must rebuild the identical configuration, which the
	// snapshot's config fingerprint enforces. Neither affects the run's
	// outcome: a checkpointing run and a restored run both produce the
	// summary a straight-through run produces, byte for byte.
	CheckpointPath string
	CheckpointAt   int64
	RestorePath    string
}

// faultPlan materializes the spec's fault plan, nil when inactive.
func (sp *simSpec) faultPlan() (*fault.Plan, error) {
	plan := &fault.Plan{Seed: sp.FaultSeed}
	if sp.FaultPlanPath != "" {
		p, err := fault.LoadPlan(sp.FaultPlanPath)
		if err != nil {
			return nil, err
		}
		plan = &p
		if sp.FaultSeed != 0 {
			plan.Seed = sp.FaultSeed
		}
	}
	if sp.DropRate > 0 {
		plan.LinkDropRate = sp.DropRate
	}
	if sp.CorruptRate > 0 {
		plan.CorruptRate = sp.CorruptRate
	}
	outages, err := fault.ParseOutages(sp.Outages)
	if err != nil {
		return nil, err
	}
	plan.Outages = append(plan.Outages, outages...)
	fails, err := fault.ParseStashFails(sp.StashFails)
	if err != nil {
		return nil, err
	}
	plan.StashFailures = append(plan.StashFailures, fails...)
	if !plan.Active() {
		return nil, nil
	}
	return plan, nil
}

// config materializes the spec's network configuration.
func (sp *simSpec) config() (*core.Config, error) {
	var cfg *core.Config
	switch sp.Preset {
	case "paper":
		cfg = core.PaperConfig()
	case "tiny":
		cfg = core.TinyConfig()
	case "", "small":
		cfg = core.SmallConfig()
	default:
		return nil, fmt.Errorf("unknown preset %q", sp.Preset)
	}
	if sp.P > 0 && sp.A > 0 && sp.H > 0 {
		cfg = core.PaperConfig()
		cfg.Topo = topo.Dragonfly{P: sp.P, A: sp.A, H: sp.H}
		radix := cfg.Topo.Radix()
		// Keep 4 rows/columns like the paper's switch; pad tile sizes.
		cfg.Rows, cfg.Cols = 4, 4
		cfg.TileIn = (radix + 3) / 4
		cfg.TileOut = (radix + 3) / 4
	}
	switch sp.Mode {
	case "baseline":
		cfg.Mode = core.StashOff
	case "e2e":
		cfg.Mode = core.StashE2E
	case "congestion":
		cfg.Mode = core.StashCongestion
		cfg.ECN = core.DefaultECN()
	default:
		return nil, fmt.Errorf("unknown mode %q", sp.Mode)
	}
	if sp.ECN {
		cfg.ECN = core.DefaultECN()
	}
	cfg.StashCapFrac = sp.CapFrac
	cfg.BankModel = sp.Banks
	cfg.Seed = sp.Seed
	if sp.ErrRate > 0 {
		cfg.ErrorRate = sp.ErrRate
		cfg.RetainPayload = true
	}
	plan, err := sp.faultPlan()
	if err != nil {
		return nil, err
	}
	cfg.Fault = plan
	drops := plan != nil && (plan.LinkDropRate > 0 || len(plan.Outages) > 0)
	if sp.Retrans || (drops && cfg.Mode == core.StashE2E) {
		// Drops in e2e mode strand stash entries without the recovery
		// ladder, so the timers switch on with the plan.
		cfg.Retrans = core.DefaultRetrans()
		if cfg.Mode == core.StashE2E {
			cfg.RetainPayload = true
		}
	}
	cfg.StashBypass = sp.StashBypass
	cfg.StashParity = sp.StashParity
	return cfg, nil
}

// victimClass returns the measured traffic class: with hotspot aggressors
// the background traffic is the victim class, otherwise the default.
func (sp *simSpec) victimClass() proto.Class {
	if sp.Hotspots > 0 {
		return proto.ClassVictim
	}
	return proto.ClassDefault
}

// build constructs the network and wires the synthetic workload.
func (sp *simSpec) build() (*network.Network, error) {
	cfg, err := sp.config()
	if err != nil {
		return nil, err
	}
	n, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	pol, err := network.ParseEpochPolicy(sp.Epoch)
	if err != nil {
		return nil, err
	}
	n.SetEpochPolicy(pol)
	if sp.Invariants {
		every := sp.InvariantsEvery
		if every <= 0 {
			every = 64
		}
		n.EnableInvariants(every)
	}

	rng := sim.NewRNG(sp.Seed + 77)
	rate := n.ChannelRate()
	msgFlits := sp.MsgPkts * proto.MaxPacketFlits
	victims := sp.victimClass()
	n.Collectors.WithHist(victims)
	hotDst := map[int32]bool{}
	hotSrc := map[int32]bool{}
	if sp.Hotspots > 0 {
		d := cfg.Topo
		// Build the destination list alongside the set: iterating the map
		// would make aggressor targeting depend on map order.
		dsts := make([]int32, 0, sp.Hotspots)
		for i := 0; i < sp.Hotspots; i++ {
			sw := (i * d.NumSwitches()) / sp.Hotspots
			id := int32(d.EndpointID(sw, 0))
			if !hotDst[id] {
				hotDst[id] = true
				dsts = append(dsts, id)
			}
		}
		k := 0
		for i := 1; k < 4*sp.Hotspots && i < d.NumEndpoints(); i += 7 {
			id := int32(i)
			if !hotDst[id] {
				hotSrc[id] = true
				k++
			}
		}
		k = 0
		for _, ep := range n.Endpoints {
			if hotSrc[ep.ID] {
				ep.Gen = traffic.Hotspot(dsts[k%len(dsts)], msgFlits, proto.ClassAggressor, 0)
				k++
			}
		}
	}
	for _, ep := range n.Endpoints {
		if ep.Gen != nil || hotDst[ep.ID] {
			continue
		}
		gen := rng.Derive(uint64(ep.ID))
		ep.Gen = traffic.Uniform(gen, len(n.Endpoints), nil,
			sp.Load, rate, msgFlits, victims, 0)
		ep.GenRNG = gen
	}
	return n, nil
}

// run executes warmup plus the measured window and fills the summary's
// simulation-determined fields (observability artifacts are the caller's).
func (sp *simSpec) run(n *network.Network) *runSummary {
	if sp.Workers > 1 {
		n.SetWorkers(sp.Workers)
		defer n.Close()
	}

	// Restore rewinds nothing: the network is freshly built, so loading
	// the snapshot leaves the clock at the checkpointed cycle and the run
	// below covers only the remaining warmup and measured cycles.
	done := int64(0)
	if sp.RestorePath != "" {
		data, err := os.ReadFile(sp.RestorePath)
		if err != nil {
			fatalf("restore: %v", err)
		}
		if err := n.Restore(data); err != nil {
			fatalf("restore: %v", err)
		}
		done = int64(n.Now)
		if total := sp.Warmup + sp.Cycles; done > total {
			fatalf("restore: checkpoint was taken at cycle %d, past this run's warmup %d + cycles %d",
				done, sp.Warmup, sp.Cycles)
		}
	}
	if sp.CheckpointPath != "" {
		path := sp.CheckpointPath
		n.ScheduleCheckpoint(sp.CheckpointAt, func(now sim.Tick) {
			if err := os.WriteFile(path, n.Checkpoint(now), 0o644); err != nil {
				fatalf("checkpoint: %v", err)
			}
		})
	}
	if done < sp.Warmup {
		n.Warmup(sp.Warmup - done)
		n.Run(sp.Cycles)
	} else {
		n.Run(sp.Warmup + sp.Cycles - done)
	}

	drained := true
	if sp.Drain > 0 {
		for _, ep := range n.Endpoints {
			ep.Gen = nil
		}
		drained = n.Drain(sp.Drain)
	}

	victims := sp.victimClass()
	col := n.Collector()
	lat := col.LatAcc[victims]
	h := col.LatHist[victims]
	var s runSummary
	s.Network = n.Describe()
	s.Mode = n.Cfg.Mode.String()
	s.Seed = sp.Seed
	s.Cycles = sp.Cycles
	s.Warmup = sp.Warmup
	s.Offered = n.NormalizedOffered(sp.Cycles)
	s.Accepted = n.NormalizedAccepted(sp.Cycles)
	s.Latency.MeanNS = lat.Mean() / 1.3
	s.Latency.P50NS = float64(h.Percentile(50)) / 1.3
	s.Latency.P90NS = float64(h.Percentile(90)) / 1.3
	s.Latency.P99NS = float64(h.Percentile(99)) / 1.3
	s.Latency.MaxNS = lat.Max / 1.3
	s.Latency.Packets = lat.N
	s.Counters = n.Counters()
	s.StashResident = n.TotalStashUsed()
	if n.Cfg.FaultActive() || n.Cfg.Retrans.Enabled {
		st := n.FaultStats()
		injected, delivered, dups, abandoned := n.DeliveryTotals()
		rec := col.RecoveryAcc
		s.Fault = &faultSummary{
			PktsDropped:          st.PktsDropped,
			FlitsDropped:         st.FlitsDropped,
			OutagePkts:           st.OutagePkts,
			FlitsCorrupted:       st.FlitsCorrupted,
			StashCopiesLost:      st.StashCopiesLost,
			InjectedPkts:         injected,
			DeliveredUnique:      delivered,
			DuplicatesSuppressed: dups,
			Abandoned:            abandoned,
			StashResends:         s.Counters.E2ERetransmits,
			EndpointResends:      col.EndpointRetransmits,
			CorruptPkts:          col.CorruptPkts,
			RecoveredPkts:        col.RecoveredPkts,
			RecoveryMeanNS:       rec.Mean() / 1.3,
			StashReconstructed:   s.Counters.StashReconstructed,
			StashReconFailed:     s.Counters.StashReconFailed,
			Drained:              drained,
		}
	}
	return &s
}
