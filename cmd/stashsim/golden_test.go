package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenSpecs is the committed-results matrix: both cheap presets across the
// three behaviour regimes (plain stashing, fault injection with the recovery
// ladder, and ECN congestion control). Every spec pins its seed, so the
// expected output is a function of the code alone; perf refactors that shift
// any simulation outcome fail TestGoldenResults before they reach a figure.
var goldenSpecs = []struct {
	name string
	spec simSpec
}{
	{"tiny-baseline", simSpec{
		Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
		Load: 0.35, MsgPkts: 1,
		Cycles: 4000, Warmup: 500, Seed: 42,
		Invariants: true, InvariantsEvery: 64,
	}},
	{"tiny-fault", simSpec{
		Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
		Load: 0.25, MsgPkts: 1,
		Cycles: 4000, Warmup: 500, Seed: 13,
		DropRate: 2e-3, CorruptRate: 1e-3, FaultSeed: 5,
		Drain:      400000,
		Invariants: true, InvariantsEvery: 64,
	}},
	{"tiny-parity", simSpec{
		Preset: "tiny", Mode: "e2e", CapFrac: 1.0,
		Load: 0.25, MsgPkts: 1,
		Cycles: 4000, Warmup: 500, Seed: 9,
		DropRate: 6e-3, FaultSeed: 3,
		StashFails:  "0.0@3000,0.1@3200,1.0@3400,1.1@3600,2.0@3800,2.1@4000",
		StashParity: 4,
		Drain:       400000,
		Invariants:  true, InvariantsEvery: 64,
	}},
	{"tiny-ecn", simSpec{
		Preset: "tiny", Mode: "congestion", CapFrac: 1.0,
		Load: 0.4, MsgPkts: 2, Hotspots: 2, ECN: true,
		Cycles: 4000, Warmup: 500, Seed: 8,
	}},
	{"small-baseline", simSpec{
		Preset: "small", Mode: "e2e", CapFrac: 1.0,
		Load: 0.3, MsgPkts: 1,
		Cycles: 1500, Warmup: 300, Seed: 42,
	}},
	{"small-fault", simSpec{
		Preset: "small", Mode: "e2e", CapFrac: 1.0,
		Load: 0.2, MsgPkts: 1,
		Cycles: 1500, Warmup: 300, Seed: 13,
		DropRate: 2e-3, FaultSeed: 5,
		Drain: 400000,
	}},
	{"small-parity", simSpec{
		Preset: "small", Mode: "e2e", CapFrac: 1.0,
		Load: 0.2, MsgPkts: 1,
		Cycles: 1500, Warmup: 300, Seed: 13,
		DropRate: 8e-3, FaultSeed: 5,
		StashFails:  "0.0@1200,0.1@1300,1.0@1400,1.1@1500,2.0@1600,2.1@1700",
		StashParity: 4,
		Drain:       400000,
		Invariants:  true, InvariantsEvery: 64,
	}},
	{"small-ecn", simSpec{
		Preset: "small", Mode: "congestion", CapFrac: 1.0,
		Load: 0.3, MsgPkts: 2, Hotspots: 2, ECN: true,
		Cycles: 1500, Warmup: 300, Seed: 8,
	}},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenResults byte-compares each spec's -json summary against the
// committed file under testdata/golden/. Run with UPDATE_GOLDEN=1 to
// regenerate after an intentional behaviour change; the diff then documents
// the change in review.
func TestGoldenResults(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, g := range goldenSpecs {
		g := g
		t.Run(g.name, func(t *testing.T) {
			got := append(runJSON(t, g.spec), '\n')
			path := goldenPath(g.name)
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1 go test -run TestGoldenResults ./cmd/stashsim): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary diverged from %s\n(if intentional, regenerate with UPDATE_GOLDEN=1)\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
