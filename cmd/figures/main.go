// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -exp all -preset small -out results/
//	figures -exp fig5 -preset paper -out results-paper/
//
// Each experiment prints its table(s) to stdout and, with -out, writes CSV
// files suitable for plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"stashsim/internal/fault"
	"stashsim/internal/harness"
	"stashsim/internal/network"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
	"stashsim/internal/viz"
)

// tableSeries extracts numeric columns from a table as plottable series,
// using column xCol as the x axis.
func tableSeries(t *stats.Table, xCol int, yCols ...int) []viz.Series {
	var out []viz.Series
	for _, yc := range yCols {
		s := viz.Series{Name: t.Header[yc]}
		for _, row := range t.Rows {
			x, errX := strconv.ParseFloat(row[xCol], 64)
			y, errY := strconv.ParseFloat(row[yc], 64)
			if errX != nil || errY != nil {
				continue
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		out = append(out, s)
	}
	return out
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1,table2,fig5,fig6,fig7,fig8,fig9,ablations,faults or all (comma separated)")
	preset := flag.String("preset", "small", "network scale: tiny, small, paper")
	out := flag.String("out", "", "directory for CSV output")
	quick := flag.Bool("quick", false, "shortened runs (smoke test)")
	seed := flag.Uint64("seed", 1, "master random seed")
	invariants := flag.Bool("invariants", false, "audit runtime conservation invariants during the runs")
	invariantsEvery := flag.Int64("invariants-every", 64, "invariant audit interval in cycles")
	faultPlan := flag.String("fault-plan", "", "JSON fault plan injected into every experiment network")
	dropRate := flag.Float64("link-drop-rate", 0, "per-packet drop probability injected into every experiment network")
	outages := flag.String("link-outage", "", "outage windows (link@start-end, comma separated) injected into every experiment network")
	stashFails := flag.String("stash-fail", "", "stash-bank failures (switch.port@cycle, comma separated) injected into every experiment network")
	stashParity := flag.Int("stash-parity", 0, "erasure-code stash copies into XOR parity groups of this width on every e2e experiment network (0 = off)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "sweep-level worker pool fanning out independent design points (tables are identical for any value)")
	epoch := flag.String("epoch", "auto", "cycle-level sync policy for experiment networks: auto, off, or an epoch-length cap in cycles (tables are identical for any value)")
	checkpointSpec := flag.String("checkpoint", "", "write a warm snapshot of every design point as file@cycle (cycle inside each experiment's warmup window); files get .<experiment>.<point> suffixes")
	restore := flag.String("restore", "", "resume every design point from the warm snapshots a previous -checkpoint run wrote with this file prefix; tables are byte-identical to a straight-through run")
	profileExec := flag.Bool("profile-exec", false, "profile per-phase executor time across every experiment network; report to stderr and, with -out, exec_profile.json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	switch *preset {
	case "", "tiny", "small", "paper":
	default:
		log.Fatalf("unknown preset %q (want tiny, small, or paper)", *preset)
	}
	if _, err := network.ParseEpochPolicy(*epoch); err != nil {
		log.Fatalf("%v", err)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	o := &harness.Options{
		Preset:          *preset,
		OutDir:          *out,
		Quick:           *quick,
		Seed:            *seed,
		Invariants:      *invariants,
		InvariantsEvery: *invariantsEvery,
		StashParity:     *stashParity,
		Workers:         *workers,
		Epoch:           *epoch,
		RestorePath:     *restore,
		Log: func(format string, args ...any) {
			log.Printf(format, args...)
		},
	}
	if *checkpointSpec != "" {
		i := strings.LastIndex(*checkpointSpec, "@")
		if i <= 0 {
			log.Fatalf("-checkpoint wants file@cycle, got %q", *checkpointSpec)
		}
		at, err := strconv.ParseInt((*checkpointSpec)[i+1:], 10, 64)
		if err != nil || at < 0 {
			log.Fatalf("-checkpoint wants file@cycle with a non-negative cycle, got %q", *checkpointSpec)
		}
		o.CheckpointPath = (*checkpointSpec)[:i]
		o.CheckpointAt = at
	}
	var prof *sim.ExecProfiler
	if *profileExec {
		// One lane: experiment networks run serially (parallelism here is
		// sweep-level), so a shared single-lane profiler aggregates phase
		// time across every design point of every selected experiment.
		prof = sim.NewExecProfiler(1, 0)
		o.ExecProfiler = prof
	}
	if *faultPlan != "" || *dropRate > 0 || *outages != "" || *stashFails != "" {
		plan := &fault.Plan{Seed: *seed}
		if *faultPlan != "" {
			p, err := fault.LoadPlan(*faultPlan)
			if err != nil {
				log.Fatalf("%v", err)
			}
			plan = &p
		}
		if *dropRate > 0 {
			plan.LinkDropRate = *dropRate
		}
		ows, err := fault.ParseOutages(*outages)
		if err != nil {
			log.Fatalf("%v", err)
		}
		plan.Outages = append(plan.Outages, ows...)
		sfs, err := fault.ParseStashFails(*stashFails)
		if err != nil {
			log.Fatalf("%v", err)
		}
		plan.StashFailures = append(plan.StashFailures, sfs...)
		o.FaultPlan = plan
	}
	log.SetFlags(log.Ltime)

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	show := func(title string, t *stats.Table) {
		fmt.Printf("\n== %s ==\n%s", title, t)
	}
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		start := time.Now() //lint:allow determinism -- wall-clock progress logging only
		if err := f(); err != nil {
			log.Printf("%s FAILED: %v", name, err)
			os.Exit(1)
		}
		//lint:allow determinism -- wall-clock progress logging only
		log.Printf("%s done in %v", name, time.Since(start).Round(time.Second))
	}

	run("table1", func() error {
		t, err := harness.Table1(o)
		if err != nil {
			return err
		}
		show("Table I: link asymmetry & buffer underutilization", t)
		return nil
	})
	run("table2", func() error {
		t, err := harness.Table2(o)
		if err != nil {
			return err
		}
		show("Table II: DesignForward application traces (synthesized)", t)
		return nil
	})
	run("fig5", func() error {
		lat, acc, err := harness.Fig5(o)
		if err != nil {
			return err
		}
		show("Figure 5a: latency vs offered load (us)", lat)
		c := &viz.Chart{Title: "Fig 5a (shape)", XLabel: "offered load", YLabel: "latency us"}
		fmt.Println(c.Render(tableSeries(lat, 0, 1, 2, 3, 4)...))
		show("Figure 5b: offered vs accepted throughput", acc)
		c = &viz.Chart{Title: "Fig 5b (shape)", XLabel: "offered load", YLabel: "accepted"}
		fmt.Println(c.Render(tableSeries(acc, 0, 1, 2, 3, 4)...))
		return nil
	})
	run("fig6", func() error {
		t, err := harness.Fig6(o)
		if err != nil {
			return err
		}
		show("Figure 6: trace runtime normalized to baseline", t)
		var labels []string
		var values [][]float64
		for _, row := range t.Rows {
			labels = append(labels, row[0])
			var vals []float64
			for i := 2; i < len(row); i++ {
				v, err := strconv.ParseFloat(row[i], 64)
				if err == nil {
					vals = append(vals, v)
				}
			}
			values = append(values, vals)
		}
		fmt.Println(viz.Bars("Fig 6 (shape)", labels, t.Header[2:], values, 40))
		return nil
	})
	if want["fig8"] && !want["fig7"] && !all {
		want["fig7"] = true // Fig 8 is produced by the Fig 7 runs
	}
	run("fig7", func() error {
		r, err := harness.Fig7(o)
		if err != nil {
			return err
		}
		show("Figure 7a: victim latency over time (us)", r.Series)
		c := &viz.Chart{Title: "Fig 7a (shape)", XLabel: "time us", YLabel: "victim latency us"}
		fmt.Println(c.Render(tableSeries(r.Series, 0, 1, 2, 3)...))
		show("Figure 7b: victim latency distribution percentiles (ns)", r.InvCDF)
		show("Figure 8: hotspot switch stash utilization & aggressor load", r.Stash)
		c = &viz.Chart{Title: "Fig 8 (shape)", XLabel: "time us", YLabel: "util / load"}
		fmt.Println(c.Render(tableSeries(r.Stash, 0, 1, 2)...))
		return nil
	})
	run("ablations", func() error {
		t, err := harness.Ablations(o)
		if err != nil {
			return err
		}
		show("Ablations: design-choice sensitivity at full load (e2e stashing)", t)
		return nil
	})
	run("fig9", func() error {
		t, err := harness.Fig9(o)
		if err != nil {
			return err
		}
		show("Figure 9: victim p90 latency vs aggressor burst size", t)
		c := &viz.Chart{Title: "Fig 9 (shape)", XLabel: "burst pkts", YLabel: "victim p90 us"}
		fmt.Println(c.Render(tableSeries(t, 0, 1, 2, 3)...))
		return nil
	})
	run("faults", func() error {
		t, err := harness.Faults(o)
		if err != nil {
			return err
		}
		show("Faults: recovery latency, stash-local vs source-endpoint resend", t)
		return nil
	})

	if prof != nil {
		rep := prof.Report()
		fmt.Fprint(os.Stderr, rep.Text())
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatalf("exec profile: %v", err)
			}
			path := filepath.Join(*out, "exec_profile.json")
			if err := os.WriteFile(path, rep.JSON(), 0o644); err != nil {
				log.Fatalf("exec profile: %v", err)
			}
			log.Printf("exec profile written to %s", path)
		}
	}
}
